// Codedstorage compares, end to end, the storage behaviour that motivates
// the paper (Sections 1-2): erasure-coded registers (CASGC) are cheap at low
// write concurrency but their cost grows with the number of active writes,
// while replication (ABD) pays a high flat cost. The crossover matches the
// analytic prediction nu ~ (f+1)(N-f)/N.
package main

import (
	"fmt"
	"log"

	shmem "repro"
)

const (
	nServers   = 9
	fFailures  = 2
	valueBytes = 1024
)

func main() {
	p := shmem.Params{N: nServers, F: fFailures}
	log2V := float64(8 * valueBytes)

	fmt.Printf("storage vs write concurrency, N=%d f=%d, values of %d bits\n\n", nServers, fFailures, 8*valueBytes)
	fmt.Printf("%4s %16s %16s %14s %14s\n", "nu", "casgc_measured", "abd_measured", "Thm6.5_bound", "Thm5.1_bound")

	for nu := 1; nu <= 4; nu++ {
		casNorm, err := measureCAS(nu)
		if err != nil {
			log.Fatal(err)
		}
		abdNorm, err := measureABD(nu)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d %16.3f %16.3f %14.3f %14.3f\n",
			nu, casNorm, abdNorm,
			shmem.Theorem65TotalBits(p, nu, log2V)/log2V,
			shmem.Theorem51TotalBits(p, log2V)/log2V)
	}

	fmt.Printf("\nanalytic crossover (erasure bound meets replication's f+1): nu = %d\n",
		shmem.ReplicationCrossoverNu(p))
	fmt.Println("shape: the casgc column grows ~linearly with nu; the abd column is flat.")
}

// measure opens a store of the named algorithm and meters one batch
// workload at write concurrency nu, returning the normalized storage cost.
func measure(alg string, nu int) (float64, error) {
	st, err := shmem.Open(shmem.Config{
		Algorithms: []string{alg},
		Servers:    nServers,
		F:          fFailures,
	}, shmem.WithClients(nu, 1))
	if err != nil {
		return 0, err
	}
	defer st.Close()
	res, err := st.RunWorkload(shmem.WorkloadSpec{
		Seed: 42, Writes: 5 * nu, Reads: 2, TargetNu: nu, ValueBytes: valueBytes,
	})
	if err != nil {
		return 0, err
	}
	if err := res.CheckConsistency(st.Condition()); err != nil {
		return 0, err
	}
	return res.NormalizedTotal, nil
}

func measureCAS(nu int) (float64, error) { return measure("casgc", nu) }

func measureABD(nu int) (float64, error) { return measure("abd-mwmr", nu) }
