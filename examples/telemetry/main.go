// Telemetry walkthrough: watching the paper's storage bound hold while the
// store runs. The lower bounds of Cadambe–Wang–Lynch (Theorems 4.1 and 5.1)
// say how many bits a server must hold in the worst case; the simulator
// verifies them against exact step-indexed accounting after a run finishes.
// The telemetry subsystem makes the same comparison observable DURING a run
// on the concurrent backends: a registry of lock-free counters, gauges and
// histograms that the live runtime publishes into — per-node storage-bit
// gauges sampled from the nodes' watermark atomics, the bound for the run's
// shape, the measured-vs-bound slack, op-latency histograms, and the online
// checker's verification frontier — served over HTTP in Prometheus text
// format.
//
// This example opens a live store with telemetry wired, serves /metrics on
// an ephemeral loopback port, runs a batch workload, then scrapes its own
// endpoint and reads back the bound comparison — the whole observability
// loop in one process.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strings"

	shmem "repro"
)

func main() {
	// A registry plus an HTTP endpoint: /metrics (Prometheus text),
	// /trace (sampled op-lifecycle spans), /debug/pprof/.
	reg := shmem.NewTelemetry()
	srv, err := shmem.ServeTelemetry("127.0.0.1:0", reg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("serving           : %s/metrics\n", srv.URL())

	// A live store wired into the registry: every shard's runtime samples
	// its storage watermarks and latency histograms into it as it runs.
	st, err := shmem.Open(shmem.Config{
		Algorithms: []string{"cas"},
		Servers:    5,
		F:          1,
		Shards:     2,
	}, shmem.WithBackend("live"), shmem.WithTelemetry(reg))
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	res, err := st.RunMulti(shmem.MultiWorkloadSpec{
		Seed: 7, Keys: 16, Ops: 160, ReadFraction: 0.3, TargetNu: 2, ValueBytes: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload          : %d ops over %d shards, %d quiescent\n",
		res.TotalOps, len(res.PerShard), res.QuiescentShards)

	// Scrape our own endpoint — exactly what a Prometheus server would do.
	body, err := scrape(srv.URL() + "/metrics")
	if err != nil {
		log.Fatal(err)
	}

	// Read the bound comparison back out of the exposition: the per-node
	// watermark gauges against the Theorem 4.1 bound for this shape.
	maxBits := maxValue(body, "shmem_storage_max_bits")
	bound41 := maxValue(body, `shmem_storage_bound_bits{shard="0",theorem="4.1"}`)
	fmt.Printf("scraped           : max per-node storage %v bits, Theorem 4.1 bound %v bits\n", maxBits, bound41)
	fmt.Printf("series exported   : %d\n", strings.Count(body, "\n")-strings.Count(body, "#"))

	names := metricNames(body)
	fmt.Printf("metric families   : %s ...\n", strings.Join(names[:min(6, len(names))], ", "))
}

func scrape(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// maxValue returns the largest sample value among exposition lines whose
// series name (with labels) starts with prefix.
func maxValue(body, prefix string) float64 {
	best := 0.0
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &v); err == nil && v > best {
			best = v
		}
	}
	return best
}

// metricNames collects the sorted distinct family names in the exposition.
func metricNames(body string) []string {
	seen := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			seen[strings.Fields(rest)[0]] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
