// Live-runtime walkthrough: the same node automata, two execution
// substrates. The paper's algorithms (and the CAS paper explicitly) are
// stated for real asynchronous message-passing networks; everything else in
// this repository runs them on a deterministic simulator, because the
// lower-bound proofs need schedules that are data. This example runs one CAS
// deployment twice:
//
//  1. on the simulator — the determinism oracle: a discrete schedule, exact
//     step-indexed storage accounting, replayable byte-for-byte; and
//  2. on the live concurrent runtime — every node automaton on its own
//     goroutine with a mailbox, messages over channels, real parallelism,
//     wall-clock latencies — under a delay fault plan whose rules are the
//     very same seeded faults.Plan machinery the simulator uses.
//
// Both histories are checked against the same atomicity checker: the
// backend changes what you can measure (determinism and storage bounds vs
// throughput and latency), never what the algorithm must guarantee.
package main

import (
	"fmt"
	"log"
	"time"

	shmem "repro"
)

const (
	servers = 5
	f       = 1
	writers = 3
	readers = 3
)

func main() {
	// --- backend 1: the deterministic simulator ---
	cl, cond, err := shmem.DeployAlgorithm("cas", servers, f, writers)
	if err != nil {
		log.Fatal(err)
	}
	spec := shmem.WorkloadSpec{
		Seed: 11, Writes: 12, Reads: 12, TargetNu: writers, ValueBytes: 64,
	}
	simRes, err := shmem.RunWorkload(cl, spec)
	if err != nil {
		log.Fatal(err)
	}
	if err := shmem.CheckAtomic(simRes.History, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulator backend : %d ops, %s history, total storage %d bits (deterministic, replayable)\n",
		len(simRes.History.Ops), cond, simRes.Storage.MaxTotalBits)

	// --- backend 2: the live concurrent runtime, same automata ---
	cl2, _, err := shmem.DeployAlgorithmSized("cas", servers, f, writers, readers)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := shmem.BuildFaultPlan("delay=1:8", servers, f, 7)
	if err != nil {
		log.Fatal(err)
	}
	liveSpec := spec
	liveSpec.FaultPlan = plan
	liveRes, err := shmem.RunLiveWorkload(cl2, liveSpec, shmem.LiveConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if err := shmem.CheckAtomic(liveRes.History, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live backend      : %d ops in %v (%.0f ops/sec) across %d writer + %d reader goroutines\n",
		liveRes.CompletedOps, liveRes.Elapsed.Round(time.Millisecond), liveRes.OpsPerSec, writers, readers)
	fmt.Printf("latencies         : p50 %v, p99 %v; %d messages delayed by the fault rules\n",
		liveRes.LatencyPercentile(0.50).Round(time.Microsecond),
		liveRes.LatencyPercentile(0.99).Round(time.Microsecond),
		liveRes.Faults.DelayedMessages)
	fmt.Printf("both histories pass the same %q checker — the backend changes the measurements, not the guarantee\n", cond)
}
