// Live-runtime walkthrough: the same node automata, two execution
// substrates, one API. The paper's algorithms (and the CAS paper
// explicitly) are stated for real asynchronous message-passing networks;
// everything else in this repository runs them on a deterministic
// simulator, because the lower-bound proofs need schedules that are data.
// This example opens the same Config twice —
//
//  1. on the simulator — the determinism oracle: a discrete schedule, exact
//     step-indexed storage accounting, replayable byte-for-byte; and
//  2. on the live concurrent runtime — every node automaton on its own
//     goroutine with a mailbox, messages over channels, real parallelism,
//     wall-clock latencies — under a delay fault plan whose rules are the
//     very same seeded faults.Plan machinery the simulator uses —
//
// and drives both through the identical interactive Put/Get surface plus a
// batch experiment. Both histories are checked by the same atomicity
// checker: the backend changes what you can measure (determinism and
// storage bounds vs throughput and latency), never what the algorithm must
// guarantee.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	shmem "repro"
)

const (
	servers = 5
	f       = 1
	clients = 3
)

func main() {
	cfg := shmem.Config{
		Algorithms: []string{"cas"},
		Servers:    servers,
		F:          f,
		Shards:     2,
	}
	ctx := context.Background()

	// --- backend 1: the deterministic simulator ---
	sim, err := shmem.Open(cfg, shmem.WithClients(clients, clients))
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()
	driveKeys(ctx, sim)
	if err := sim.CheckConsistency(); err != nil {
		log.Fatal(err)
	}
	sm := sim.Metrics()
	fmt.Printf("simulator backend : %d ops over %d shards, total storage %d bits (deterministic, replayable)\n",
		sm.TotalWrites+sm.TotalReads, sim.Shards(), sm.AggregateMaxTotalBits)

	// --- backend 2: the live concurrent runtime, same Config ---
	liveSt, err := shmem.Open(cfg,
		shmem.WithBackend("live"),
		shmem.WithClients(clients, clients),
		shmem.WithFaults("delay=1:8"),
		shmem.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	defer liveSt.Close()
	driveKeys(ctx, liveSt)
	if err := liveSt.CheckConsistency(); err != nil {
		log.Fatal(err)
	}
	lm := liveSt.Metrics()
	fmt.Printf("live backend      : %d ops across node goroutines; interactive p50 %v, p99 %v\n",
		lm.TotalWrites+lm.TotalReads,
		lm.LatencyP50.Round(time.Microsecond), lm.LatencyP99.Round(time.Microsecond))
	fmt.Printf("fault machinery   : %d messages delayed by the same seeded plan rules the simulator uses\n",
		lm.Faults.DelayedMessages)

	// The batch path measures what only a live backend can: wall-clock
	// throughput and per-op latency for a whole seeded workload.
	res, err := liveSt.RunWorkload(shmem.WorkloadSpec{
		Seed: 11, Writes: 12, Reads: 12, TargetNu: clients, ValueBytes: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.CheckConsistency(liveSt.Condition()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch experiment  : %d ops completed; p99 %v\n",
		len(res.Latencies), shmem.LatencyPercentile(res.Latencies, 0.99).Round(time.Microsecond))
	fmt.Printf("both histories pass the same %q checker — the backend changes the measurements, not the guarantee\n",
		liveSt.Condition())
}

// driveKeys runs the same multi-key interactive sequence on any store.
func driveKeys(ctx context.Context, st *shmem.Store) {
	seq := uint64(0)
	for round := 0; round < 2; round++ {
		for key := 0; key < 4; key++ {
			seq++
			if err := st.Put(ctx, key, shmem.MakeValue(64, seq)); err != nil {
				log.Fatal(err)
			}
			if _, err := st.Get(ctx, key); err != nil {
				log.Fatal(err)
			}
		}
	}
}
