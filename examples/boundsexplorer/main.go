// Boundsexplorer walks through the paper's quantitative landscape: it
// regenerates Figure 1, sweeps the bounds across (N, f) configurations, and
// evaluates the Section 7 feasibility summary for hypothetical algorithms.
package main

import (
	"fmt"
	"log"

	shmem "repro"
)

func main() {
	// 1. The paper's Figure 1 (N=21, f=10).
	p := shmem.Params{N: 21, F: 10}
	rows, err := shmem.Figure1(p, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(shmem.Figure1Table(p, rows))

	// 2. How the universal bound scales when f is a constant fraction of N:
	// Theorem 5.1 approaches 2N/(N-f), i.e., twice the Singleton bound —
	// the "factor two" contribution of the paper.
	fmt.Println("\nscaling at f = N/2 - 1 (normalized):")
	fmt.Printf("%6s %6s %12s %12s %10s\n", "N", "f", "Thm_B.1", "Thm_5.1", "ratio")
	for _, n := range []int{5, 9, 21, 51, 101} {
		f := n/2 - 1
		q := shmem.Params{N: n, F: f}
		b1 := float64(n) / float64(n-f)
		t51 := 2 * float64(n) / float64(n-f+2)
		fmt.Printf("%6d %6d %12.4f %12.4f %10.4f\n", n, f, b1, t51, t51/b1)
		_ = q
	}

	// 3. Section 7 feasibility summary for three hypothetical algorithms.
	fmt.Println("\nSection 7 feasibility (N=21, f=10):")
	for _, g := range []float64{2.0, 4.0, 12.0} {
		c := shmem.Section7Summary(p, 8, g)
		status := "feasible"
		if !c.Feasible {
			status = "IMPOSSIBLE"
		}
		fmt.Printf("  g=%5.2f at nu=8: %s\n", g, status)
		for _, s := range c.Statements {
			fmt.Printf("      %s\n", s)
		}
	}
}
