// Real-network walkthrough: the same node automata the simulator schedules
// deterministically, here deployed over actual TCP sockets. Every server and
// client automaton owns a loopback endpoint; protocol messages are encoded
// by the compact wire codec, framed, and written to real connections — so
// dropping a message means never writing it, and a partition means frames
// physically held at the senders until the outage window ends in wall-clock
// time. This example
//
//  1. opens a store on the net backend (WithTransport), drives the
//     interactive Put/Get surface over live sockets, and checks the
//     accumulated history with the same atomicity checker every backend
//     answers to;
//  2. re-opens it under a healing partition and shows operations riding
//     out the outage: frames held at the socket layer flow again when the window
//     closes, every op completes, and the history stays atomic.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	shmem "repro"
)

func main() {
	cfg := shmem.Config{
		Algorithms: []string{"cas"},
		Servers:    5,
		F:          1,
		Shards:     2,
	}
	ctx := context.Background()

	// --- real sockets, fault-free ---
	st, err := shmem.Open(cfg, shmem.WithTransport("127.0.0.1:0"), shmem.WithClients(2, 2))
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	driveKeys(ctx, st)
	if err := st.CheckConsistency(); err != nil {
		log.Fatal(err)
	}
	m := st.Metrics()
	fmt.Printf("net backend       : %d ops over %d shards via backend %q — every message crossed a TCP socket\n",
		m.TotalWrites+m.TotalReads, st.Shards(), st.Backend())
	fmt.Printf("interactive p50   : %v (p99 %v), total storage %d bits\n",
		m.LatencyP50.Round(time.Microsecond), m.LatencyP99.Round(time.Microsecond),
		m.AggregateMaxTotalBits)

	// --- a partition that heals, physically ---
	// Steps map to wall time through NetConfig.StepDur: the outage window
	// [0, 200) at 100µs/step blocks every server link for ~20ms, then the
	// held frames drain and the protocol finishes its quorum rounds.
	part, err := shmem.Open(cfg,
		shmem.WithTransport("127.0.0.1:0"),
		shmem.WithNetConfig(shmem.NetConfig{StepDur: 100 * time.Microsecond}),
		shmem.WithFaults("partition@0:200"),
		shmem.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	defer part.Close()
	started := time.Now()
	driveKeys(ctx, part)
	if err := part.CheckConsistency(); err != nil {
		log.Fatal(err)
	}
	pm := part.Metrics()
	fmt.Printf("healing partition : %d ops completed in %v despite a ~20ms outage; %d frames held+delayed at the sockets\n",
		pm.TotalWrites+pm.TotalReads, time.Since(started).Round(time.Millisecond),
		pm.Faults.DelayedMessages)
	fmt.Println("the same automata, the same checker — only the network got real")
}

// driveKeys runs the same multi-key interactive sequence on any store.
func driveKeys(ctx context.Context, st *shmem.Store) {
	seq := uint64(0)
	for round := 0; round < 2; round++ {
		for key := 0; key < 4; key++ {
			seq++
			if err := st.Put(ctx, key, shmem.MakeValue(64, seq)); err != nil {
				log.Fatal(err)
			}
			if _, err := st.Get(ctx, key); err != nil {
				log.Fatal(err)
			}
		}
	}
}
