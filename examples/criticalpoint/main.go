// Criticalpoint runs the paper's Theorem 4.1 proof, live, against the
// two-version erasure-coded regular register: it constructs the two-write
// executions alpha^(v1,v2), probes every point for valency by silencing the
// writer and running a read, locates the critical pair where the witnessed
// value flips from v1 to v2, and verifies the counting facts (at most one
// server changes between the critical points; distinct value pairs leave
// distinct server states).
package main

import (
	"fmt"
	"log"

	shmem "repro"
)

func main() {
	const n, f = 5, 2
	cfg := shmem.ProofConfig{
		Build:       shmem.TwoVersionBuilder(n, f),
		FailServers: []int{3, 4}, // the proof fails f servers at the start
	}

	values := [][]byte{
		shmem.MakeValue(16, 1),
		shmem.MakeValue(16, 2),
		shmem.MakeValue(16, 3),
		shmem.MakeValue(16, 4),
	}

	fmt.Printf("executable Theorem 4.1 proof: two-version coded register, N=%d f=%d |V|=%d\n\n", n, f, len(values))

	// Walk one pair in detail.
	tw, err := cfg.RunTwoWrites(values[0], values[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("execution alpha^(v1,v2) has %d points (P_0 after write-1 terminates, P_%d after write-2)\n",
		len(tw.Points), len(tw.Points)-1)
	cp, err := cfg.FindCriticalPair(tw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("critical pair at points (P_%d, P_%d):\n", cp.Index, cp.Index+1)
	fmt.Printf("  probe at Q1 returns v1, probe at Q2 returns v2: %v\n", string(cp.ProbeQ2) != string(cp.ProbeQ1))
	fmt.Printf("  live servers: %v\n", cp.Live)
	fmt.Printf("  servers changed between Q1 and Q2 (Lemma 4.8 says <= 1): %d\n", cp.NumChanged)

	// The full counting argument over all ordered pairs.
	res, err := cfg.RunTheorem41(values)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninjectivity over all %d ordered pairs: %v (%d distinct state vectors)\n",
		res.Pairs, res.Injective, res.DistinctVectors)
	fmt.Printf("certified counting bound: prod|S_n| x (N-f) x max|S_n| >= |V|(|V|-1) = %d\n", res.Pairs)
	fmt.Printf("=> the Theorem 4.1 inequality holds for this algorithm with %.3f witnessed bits\n",
		res.WitnessedBitsLowerBound)
}
