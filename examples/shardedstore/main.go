// Sharded store walkthrough: map a 32-key keyspace onto four independent
// register shards — two ABD replication shards interleaved with two CASGC
// erasure-coded shards — drive them in parallel through a Zipf-skewed
// workload, and compare each shard's metered storage against the paper's
// lower bounds. The run is deterministic: the fingerprint is identical no
// matter how many worker goroutines execute the shards.
package main

import (
	"fmt"
	"log"

	shmem "repro"
)

func main() {
	cfg := shmem.Config{
		Algorithms: []string{"abd-mwmr", "casgc"}, // cycled: shards 0,2 replicate; 1,3 code
		Servers:    5,
		F:          1,
		Shards:     4,
		Workers:    4,
	}
	spec := shmem.MultiWorkloadSpec{
		Seed:         42,
		Keys:         32,
		Ops:          96,
		ReadFraction: 0.25,
		// Key 0 is the write-hot key; key 1 is read-mostly.
		PerKeyReads: map[int]float64{0: 0, 1: 0.9},
		Skew:        "zipf",
		TargetNu:    2,
		ValueBytes:  512,
	}
	st, err := shmem.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	res, err := st.RunMulti(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-shard results (each shard is an independent register):")
	fmt.Print(res.Table())

	// Every shard's normalized cost is comparable to Figure 1's y-axis.
	// Replication pays ~N per shard; the coded shards pay ~nu*N/k.
	p := shmem.Params{N: cfg.Servers, F: cfg.F}
	log2V := res.Log2V
	fmt.Printf("\nper-shard lower bounds: Theorem B.1 = %.3f, Theorem 5.1 = %.3f\n",
		shmem.SingletonTotalBits(p, log2V)/log2V, shmem.Theorem51TotalBits(p, log2V)/log2V)
	for _, s := range res.PerShard {
		if s.Writes == 0 {
			continue
		}
		bound := shmem.SingletonTotalBits(p, log2V) / log2V
		fmt.Printf("  shard %d (%s): %.3f >= %.3f? %v\n",
			s.Shard, s.Algorithm, s.NormalizedTotal, bound, s.NormalizedTotal >= bound)
	}

	fmt.Printf("\naggregate: %d ops, %d bits total (normalized %.2f), %.0f ops/sec\n",
		res.TotalOps, res.AggregateMaxTotalBits, res.NormalizedTotal, res.OpsPerSec)

	// Determinism: a serial re-run reproduces the parallel run exactly.
	serialCfg := cfg
	serialCfg.Workers = 1
	serial, err := shmem.Open(serialCfg)
	if err != nil {
		log.Fatal(err)
	}
	defer serial.Close()
	res2, err := serial.RunMulti(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nparallel fingerprint: %s\n", res.Fingerprint())
	fmt.Printf("serial   fingerprint: %s\n", res2.Fingerprint())
	if res.Fingerprint() != res2.Fingerprint() {
		log.Fatal("parallel and serial runs diverged")
	}
	fmt.Println("byte-identical across worker counts: true")
}
