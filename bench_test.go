package shmem

// The benchmark harness regenerates every evaluation artifact of the paper
// (see DESIGN.md section 3 for the experiment index and EXPERIMENTS.md for
// the recorded results):
//
//	E1 BenchmarkFigure1Series        — Figure 1 series generation
//	E2 BenchmarkE2ClassicalComparison— replication vs erasure at nu=1
//	E3 BenchmarkE3StorageVsNu        — CASGC storage growth with nu + ABD flat line
//	E4 BenchmarkE4SingletonBound     — Solo register meets Theorem B.1
//	E5 BenchmarkE5Theorem41Proof     — executable Theorem 4.1 proof
//	E6 BenchmarkE6BoundSweep         — bound evaluation across parameters
//	E7 BenchmarkE7RestrictedClass    — executable Theorem 6.5 experiment
//	E8 (cmd/lowerbounds -summary)    — Section 7 summary (not timed)
//	E9 BenchmarkE9CheckerThroughput  — consistency-checker throughput
//	E10 BenchmarkE10ShardedStore     — sharded store: normcost and ops/sec vs shard count
//	E11 BenchmarkE11FaultScenarios   — storage high-water marks and liveness verdicts across the fault scenario grid
//	E12 BenchmarkE12LiveThroughput   — live-backend throughput across client counts and pipeline depths
//	E13 (cmd/liveload, cmd/netload -faults crash-f@...) — crash-recovery durability (not timed)
//	E14 BenchmarkE14OnlineCheck      — online windowed checking vs offline CheckAtomic vs no check on a live run
//
// Custom metrics (b.ReportMetric) carry the experiment's headline numbers so
// that bench output doubles as the results record: "normcost" is total
// storage normalized by log2|V|, directly comparable to Figure 1's y-axis.

import (
	"fmt"
	"testing"
)

// E1: Figure 1 series generation at the paper's parameters.
func BenchmarkFigure1Series(b *testing.B) {
	p := Params{N: 21, F: 10}
	var rows []Figure1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = Figure1(p, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[1].TheoremB1, "B1@nu1")
	b.ReportMetric(rows[1].Theorem51, "T51@nu1")
	b.ReportMetric(rows[11].Theorem65, "T65@nu11")
	b.ReportMetric(rows[11].ABD, "ABD")
}

// E2: the classical (nu=1) comparison of Section 2.1 — replication stores
// ~N·log|V| total while the coded register stores ~N/(N-f)·log|V|.
func BenchmarkE2ClassicalComparison(b *testing.B) {
	const n, f, valBytes = 8, 2, 4096
	log2V := float64(8 * valBytes)
	var abdNorm, soloNorm float64
	for i := 0; i < b.N; i++ {
		abdCl, err := DeployABD(n, f, 1, 1, false)
		if err != nil {
			b.Fatal(err)
		}
		if err := Write(abdCl, 0, MakeValue(valBytes, 1)); err != nil {
			b.Fatal(err)
		}
		abdNorm = float64(abdCl.Sys.Storage().MaxTotalBits) / log2V

		soloCl, err := DeploySolo(n, f, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := Write(soloCl, 0, MakeValue(valBytes, 1)); err != nil {
			b.Fatal(err)
		}
		soloNorm = float64(soloCl.Sys.Storage().MaxTotalBits) / log2V
	}
	p := Params{N: n, F: f}
	b.ReportMetric(abdNorm, "replication_normcost")
	b.ReportMetric(soloNorm, "erasure_normcost")
	b.ReportMetric(SingletonTotalBits(p, log2V)/log2V, "singleton_bound")
}

// E3: storage versus write concurrency. CASGC grows ~linearly in nu while
// ABD stays flat — the central storytelling of Section 2.3 and Figure 1.
func BenchmarkE3StorageVsNu(b *testing.B) {
	const n, f, valBytes = 9, 2, 1024
	for _, nu := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("casgc/nu=%d", nu), func(b *testing.B) {
			var norm float64
			for i := 0; i < b.N; i++ {
				cl, err := DeployCAS(n, f, 0, nu, 1)
				if err != nil {
					b.Fatal(err)
				}
				res, err := RunWorkload(cl, WorkloadSpec{
					Seed: 7, Writes: 5 * nu, Reads: 2, TargetNu: nu, ValueBytes: valBytes,
				})
				if err != nil {
					b.Fatal(err)
				}
				norm = res.NormalizedTotal
			}
			b.ReportMetric(norm, "normcost")
			b.ReportMetric(Theorem65TotalBits(Params{N: n, F: f}, nu, float64(8*valBytes))/float64(8*valBytes), "T65_bound")
		})
	}
	b.Run("abd/nu=3", func(b *testing.B) {
		var norm float64
		for i := 0; i < b.N; i++ {
			cl, err := DeployABD(n, f, 3, 1, true)
			if err != nil {
				b.Fatal(err)
			}
			res, err := RunWorkload(cl, WorkloadSpec{
				Seed: 7, Writes: 15, Reads: 2, TargetNu: 3, ValueBytes: valBytes,
			})
			if err != nil {
				b.Fatal(err)
			}
			norm = res.NormalizedTotal
		}
		b.ReportMetric(norm, "normcost")
	})
}

// E4: the Solo register meets the Theorem B.1 bound with equality (up to
// metadata) in the Appendix B execution family.
func BenchmarkE4SingletonBound(b *testing.B) {
	const n, f, valBytes = 8, 2, 4096
	log2V := float64(8 * valBytes)
	var norm float64
	for i := 0; i < b.N; i++ {
		cl, err := DeploySolo(n, f, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := Write(cl, 0, MakeValue(valBytes, 9)); err != nil {
			b.Fatal(err)
		}
		if _, err := Read(cl, 0); err != nil {
			b.Fatal(err)
		}
		norm = float64(cl.Sys.Storage().CurrentTotalBits) / log2V
	}
	b.ReportMetric(norm, "normcost")
	b.ReportMetric(SingletonTotalBits(Params{N: n, F: f}, log2V)/log2V, "B1_bound")
}

// E5: the executable Theorem 4.1 proof (critical pairs + injectivity) on
// the two-version coded register.
func BenchmarkE5Theorem41Proof(b *testing.B) {
	cfg := ProofConfig{Build: TwoVersionBuilder(5, 2), FailServers: []int{3, 4}}
	vals := [][]byte{MakeValue(16, 1), MakeValue(16, 2), MakeValue(16, 3)}
	var res *Theorem41Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = cfg.RunTheorem41(vals)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.DistinctVectors), "distinct_vectors")
	b.ReportMetric(res.WitnessedBitsLowerBound, "witnessed_bits")
}

// E6: bound evaluation across a parameter sweep (the numeric work behind
// any re-plot of Figure 1 at other N, f).
func BenchmarkE6BoundSweep(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for n := 3; n <= 30; n++ {
			for f := 0; 2*f+1 <= n; f++ {
				p := Params{N: n, F: f}
				sink += SingletonTotalBits(p, 1024)
				sink += Theorem41TotalBits(p, 1024)
				sink += Theorem51TotalBits(p, 1024)
				for nu := 1; nu <= 8; nu++ {
					sink += Theorem65TotalBits(p, nu, 1024)
				}
			}
		}
	}
	_ = sink
}

// E7: the executable Theorem 6.5 experiment on CAS.
func BenchmarkE7RestrictedClass(b *testing.B) {
	cfg := ProofConfig{Build: CASBuilder(5, 2, 2), FailServers: []int{4}}
	vectors := [][][]byte{
		{MakeValue(16, 1), MakeValue(16, 2)},
		{MakeValue(16, 3), MakeValue(16, 4)},
		{MakeValue(16, 5), MakeValue(16, 6)},
	}
	var res *Theorem65Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = cfg.RunTheorem65(vectors)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.PrefixServers), "prefix_servers")
	b.ReportMetric(float64(res.VectorsDistinct), "distinct_vectors")
}

// E9: consistency-checker throughput on a realistic concurrent history.
func BenchmarkE9CheckerThroughput(b *testing.B) {
	cl, err := DeployABD(5, 2, 2, 2, true)
	if err != nil {
		b.Fatal(err)
	}
	res, err := RunWorkload(cl, WorkloadSpec{
		Seed: 11, Writes: 40, Reads: 40, TargetNu: 2, ValueBytes: 32,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := CheckAtomic(res.History, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.History.Ops)), "ops")
}

// E10: the sharded multi-register store — aggregate normalized storage and
// operation throughput as the keyspace spreads over 1 to 16 CAS shards,
// each shard an independent system run by the parallel workload engine.
// Load scales with the shard count so per-shard work stays constant.
func BenchmarkE10ShardedStore(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			var res *StoreResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = RunStore(StoreOptions{
					Shards:     shards,
					Algorithms: []string{"cas"},
					Servers:    5,
					F:          1,
					Workload: MultiWorkloadSpec{
						Seed:         11,
						Keys:         8 * shards,
						Ops:          16 * shards,
						ReadFraction: 0.25,
						Skew:         "zipf",
						TargetNu:     2,
						ValueBytes:   256,
					},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.NormalizedTotal, "normcost")
			b.ReportMetric(res.OpsPerSec, "ops/sec")
		})
	}
}

// E11: the fault scenario grid — the store under quorum-preserving crashes,
// a healing partition, lossy links and delay/reorder, per algorithm class
// (ABD replication vs CAS erasure coding). Reported metrics are the
// experiment's verdict record: the storage high-water mark normalized by
// log2|V| ("normcost"), the largest single-server footprint in bits, and how
// many shards went quiescent (liveness lost; safety is asserted via the
// per-shard consistency checks inside RunStore either way).
func BenchmarkE11FaultScenarios(b *testing.B) {
	scenarios := []string{"none", "crash-f@10", "partition@40:4000", "lossy=0.02", "delay=1:16"}
	for _, algo := range []string{"abd-mwmr", "cas"} {
		for _, scenario := range scenarios {
			b.Run(algo+"/"+scenario, func(b *testing.B) {
				b.ReportAllocs()
				var res *StoreResult
				for i := 0; i < b.N; i++ {
					var err error
					res, err = RunStore(StoreOptions{
						Shards:     2,
						Algorithms: []string{algo},
						Servers:    5,
						F:          1,
						Workload: MultiWorkloadSpec{
							Seed:         11,
							Keys:         16,
							Ops:          48,
							ReadFraction: 0.25,
							TargetNu:     2,
							ValueBytes:   256,
							Faults:       []string{scenario},
						},
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(res.NormalizedTotal, "normcost")
				b.ReportMetric(float64(res.MaxServerBits), "maxsrvbits")
				b.ReportMetric(float64(res.QuiescentShards), "quiescent")
			})
		}
	}
}

// E12: live-backend throughput across client counts and pipeline depths —
// the flow-control record. Bounded mailboxes give the run backpressure
// instead of goroutine storms, and pipelining keeps each client's next
// operations queued at the node, so throughput holds as concurrency grows.
// Consistency checking is disabled (the checkers are worst-case exponential
// in write concurrency); history well-formedness is still enforced by
// construction. "ops/sec" is the headline metric; "lost" must stay 0 on a
// fault-free run. The clients=64/pipeline=4 point runs twice — telemetry off
// and on — as the instrumentation-overhead record: the lock-free counters,
// latency histograms and storage samplers are budgeted at under 5% of
// throughput (DESIGN.md section 14), and this pair is the regression gate.
func BenchmarkE12LiveThroughput(b *testing.B) {
	for _, tc := range []struct {
		clients, pipeline int
		telemetry         bool
	}{
		{16, 1, false}, {16, 4, false}, {64, 4, false}, {64, 4, true}, {256, 8, false},
	} {
		name := fmt.Sprintf("clients=%d/pipeline=%d", tc.clients, tc.pipeline)
		if tc.telemetry {
			name += "/telemetry=on"
		}
		b.Run(name, func(b *testing.B) {
			var res *StoreResult
			for i := 0; i < b.N; i++ {
				opts := []Option{WithClients(tc.clients, tc.clients), WithPipeline(tc.pipeline), WithSkipCheck()}
				if tc.telemetry {
					opts = append(opts, WithTelemetry(NewTelemetry()))
				}
				st, err := Open(Config{
					Algorithms: []string{"abd-mwmr"},
					Servers:    5,
					F:          1,
					Backend:    "live",
				}, opts...)
				if err != nil {
					b.Fatal(err)
				}
				res, err = st.RunMulti(MultiWorkloadSpec{
					Seed:         11,
					Keys:         32,
					Ops:          8 * tc.clients,
					ReadFraction: 0.3,
					TargetNu:     tc.clients,
					ValueBytes:   64,
				})
				st.Close()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.OpsPerSec, "ops/sec")
			b.ReportMetric(float64(res.Faults.Drops+res.Faults.TransportDropped), "lost")
		})
	}
}

// E14: the cost of verification on a live run — the streaming-checker
// record. The same abd-mwmr workload runs three ways: online (the windowed
// checker rides the run via the history sink, drivers quiescing every
// window), offline (the full history accumulates and CheckAtomic runs after
// the fact, worst-case exponential and quadratic even when it behaves), and
// skip (no checking: the throughput ceiling). "ops/sec" includes the check
// for the online and offline modes — that is the point — and "verified"
// reports how much of the history the online frontier retired.
func BenchmarkE14OnlineCheck(b *testing.B) {
	const ops = 20_000
	for _, mode := range []string{"online", "offline", "skip"} {
		b.Run(mode, func(b *testing.B) {
			var res *StoreResult
			for i := 0; i < b.N; i++ {
				opts := []Option{WithClients(1, 1), WithPipeline(8)}
				switch mode {
				case "online":
					opts = append(opts, WithOnlineCheck())
				case "skip":
					opts = append(opts, WithSkipCheck())
				}
				st, err := Open(Config{
					Algorithms: []string{"abd-mwmr"},
					Servers:    5,
					F:          1,
					Backend:    "live",
				}, opts...)
				if err != nil {
					b.Fatal(err)
				}
				res, err = st.RunMulti(MultiWorkloadSpec{
					Seed:         11,
					Keys:         32,
					Ops:          ops,
					ReadFraction: 0.5,
					TargetNu:     1,
					ValueBytes:   16,
				})
				st.Close()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.OpsPerSec, "ops/sec")
			b.ReportMetric(float64(res.OpsVerified), "verified")
		})
	}
}

// End-to-end operation latency benchmarks for the two main algorithms.
func BenchmarkABDWriteReadPair(b *testing.B) {
	cl, err := DeployABD(5, 2, 1, 1, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Write(cl, 0, MakeValue(64, uint64(i+1))); err != nil {
			b.Fatal(err)
		}
		if _, err := Read(cl, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCASWriteReadPair(b *testing.B) {
	cl, err := DeployCAS(7, 2, 0, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Write(cl, 0, MakeValue(64, uint64(i+1))); err != nil {
			b.Fatal(err)
		}
		if _, err := Read(cl, 0); err != nil {
			b.Fatal(err)
		}
	}
}
