GO ?= go

.PHONY: build test race bench bench-smoke fmt fmt-check vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1s .

# One iteration of the headline benchmark — fast enough for every CI run.
bench-smoke:
	$(GO) test -run NONE -bench Figure1Series -benchtime 1x .

fmt:
	gofmt -w .

# Fails (with the offending file list) when any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Exactly what CI runs.
ci: build vet fmt-check race bench-smoke
