GO ?= go
DATE ?= $(shell date +%Y-%m-%d)

# The packages holding the hot-path micro-benchmarks (simulation kernel,
# GF(2^8)/erasure coding, linearizability checker).
MICRO_PKGS = ./internal/gf ./internal/erasure ./internal/ioa ./internal/consistency
MICRO_BENCH = 'BenchmarkMulSlice|BenchmarkEncodeDecode|BenchmarkFairRunSweep|BenchmarkRandomRunSweep|BenchmarkCheckAtomicDense'

.PHONY: build test race live-race chaos-smoke check-smoke liveload-smoke netload-smoke telemetry-smoke bench bench-smoke bench-micro bench-micro-smoke bench-json fuzz-smoke examples fmt fmt-check vet apicheck apicheck-update ci

build:
	$(GO) build ./...

# -shuffle=on randomizes test execution order to catch order-dependent tests.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

# The live concurrent runtime is the one package whose correctness depends on
# goroutine interleavings, so it gets a dedicated double-pass race smoke: two
# counted runs catch schedules a single pass misses.
live-race:
	$(GO) test -race -count=2 ./internal/live

# Chaos smoke: the wall-clock fault scheduler's crash+partition behavior on
# the live and net backends under the race detector — the chaos tests first
# (snapshot-restore durability, partition gate timing, goroutine reaping,
# quorum-kill quiescence), then a small faultsim scenario matrix driving the
# whole grid over real goroutines and real sockets.
chaos-smoke:
	$(GO) test -race -count=1 -run 'Partition|Recovery|CrashRecover|CrashReaps|QuorumKill' ./internal/live ./internal/netrun
	$(GO) run -race ./cmd/faultsim -grid -backend live,net -n 3 -f 1 -keys 8 -ops 16 -valuebytes 64 -optimeout 2s > /dev/null
	@echo chaos-smoke ok

# Streaming-checker smoke: one live-backend cluster streams a 10^5-op
# history through the online windowed linearizability checker while it runs,
# under the race detector — verdict clean, frontier caught up, peak checker
# window bounded by the retirement window (not the history). This is the CI
# step that keeps the whole streaming pipeline honest end to end.
check-smoke:
	$(GO) test -race -count=1 -run TestCheckSmokeOnline -v .
	@echo check-smoke ok

# End-to-end smoke of the live load generator: a small client-count sweep on
# two shards, consistency-checked per shard, plus one pipelined point
# (depth > 1) exercising the bounded-mailbox flow-control path.
liveload-smoke:
	$(GO) run ./cmd/liveload -clients 1,2,4 -ops 48 -shards 2 -keys 16 > /dev/null
	$(GO) run ./cmd/liveload -clients 4 -ops 64 -shards 1 -keys 8 -pipeline 4 > /dev/null
	@echo liveload-smoke ok

# End-to-end smoke of the real-network load generator: the same sweep shape
# over actual loopback TCP sockets, plus one healing-partition point — the
# fault class only the net backend can run outside the simulator.
netload-smoke:
	$(GO) run ./cmd/netload -clients 1,2,4 -ops 48 -shards 2 -keys 16 > /dev/null
	$(GO) run ./cmd/netload -clients 1 -ops 16 -shards 1 -keys 4 -faults partition@0:200 > /dev/null
	$(GO) run ./cmd/netload -clients 4 -ops 64 -shards 1 -keys 8 -pipeline 4 > /dev/null
	@echo netload-smoke ok

# Telemetry smoke: a netload sweep with -telemetry serving live /metrics,
# scraped repeatedly while it runs — every scrape must be a well-formed
# Prometheus exposition with monotone counters (TestTelemetrySmoke), and the
# storage gauges a live run publishes must never exceed the final ioa
# watermark (TestTelemetryScrapeDuringLiveRun).
telemetry-smoke:
	$(GO) test -race -count=1 -run TestTelemetrySmoke ./cmd/netload
	$(GO) test -race -count=1 -run TestTelemetryScrapeDuringLiveRun .
	@echo telemetry-smoke ok

bench:
	$(GO) test -bench . -benchtime 1s .

# One iteration of the headline benchmark — fast enough for every CI run.
bench-smoke:
	$(GO) test -run NONE -bench Figure1Series -benchtime 1x .

# Hot-path micro-benchmarks (allocation-reporting) at measurement length.
bench-micro:
	$(GO) test -run NONE -bench $(MICRO_BENCH) -benchmem -benchtime 1s $(MICRO_PKGS)

# One iteration of every micro-benchmark — the CI smoke step that keeps the
# hot-path harnesses compiling and running.
bench-micro-smoke:
	$(GO) test -run NONE -bench $(MICRO_BENCH) -benchtime 1x $(MICRO_PKGS)

# Machine-readable perf record: runs the micro-benchmarks plus the
# experiment benchmarks (E9-E12, E14) and writes BENCH_<date>.json for the repository's
# perf trajectory. Override DATE to control the filename/stamp. Bench output
# is staged in a temp file so a failing benchmark run aborts the target
# instead of silently committing a partial baseline.
bench-json:
	$(GO) test -run NONE -bench $(MICRO_BENCH) -benchmem -benchtime 0.2s $(MICRO_PKGS) > bench-json.tmp
	$(GO) test -run NONE -bench 'E9|E10ShardedStore|E11FaultScenarios|E12LiveThroughput|E14OnlineCheck' -benchmem -benchtime 2x . >> bench-json.tmp
	$(GO) run ./cmd/benchjson -date $(DATE) < bench-json.tmp > BENCH_$(DATE).json
	@rm -f bench-json.tmp
	@echo wrote BENCH_$(DATE).json

# Short native-fuzzing passes over the coding-theory kernels (one -fuzz
# pattern per package run, as the fuzz engine requires).
fuzz-smoke:
	$(GO) test -run NONE -fuzz FuzzErasureRoundTrip -fuzztime 10s ./internal/erasure
	$(GO) test -run NONE -fuzz FuzzMatrixInverse -fuzztime 10s ./internal/gf

# Build every example and smoke-run each one (all finish in well under a
# second), so example rot is caught on push.
examples:
	$(GO) build ./examples/...
	@set -e; for d in examples/*/; do \
		echo "run $$d"; \
		$(GO) run ./$$d > /dev/null; \
	done

fmt:
	gofmt -w .

# Fails (with the offending file list) when any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Public-surface golden: the root package's full `go doc` output, committed
# as API.txt. apicheck fails with the diff when the surface drifts, so API
# changes are reviewed, not accidental; regenerate a deliberate change with
# apicheck-update.
apicheck:
	@$(GO) doc -all . > api-check.tmp || { rm -f api-check.tmp; exit 1; }; \
	if ! diff -u API.txt api-check.tmp; then \
		echo "public API drifted from API.txt; run 'make apicheck-update' if this is intended"; \
		rm -f api-check.tmp; exit 1; \
	fi; rm -f api-check.tmp
	@echo apicheck ok

apicheck-update:
	$(GO) doc -all . > API.txt
	@echo wrote API.txt

# Exactly what CI runs.
ci: build vet fmt-check apicheck race live-race chaos-smoke check-smoke liveload-smoke netload-smoke telemetry-smoke examples fuzz-smoke bench-smoke bench-micro-smoke
