GO ?= go

.PHONY: build test race bench bench-smoke fuzz-smoke examples fmt fmt-check vet ci

build:
	$(GO) build ./...

# -shuffle=on randomizes test execution order to catch order-dependent tests.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

bench:
	$(GO) test -bench . -benchtime 1s .

# One iteration of the headline benchmark — fast enough for every CI run.
bench-smoke:
	$(GO) test -run NONE -bench Figure1Series -benchtime 1x .

# Short native-fuzzing passes over the coding-theory kernels (one -fuzz
# pattern per package run, as the fuzz engine requires).
fuzz-smoke:
	$(GO) test -run NONE -fuzz FuzzErasureRoundTrip -fuzztime 10s ./internal/erasure
	$(GO) test -run NONE -fuzz FuzzMatrixInverse -fuzztime 10s ./internal/gf

# Build every example and smoke-run each one (all finish in well under a
# second), so example rot is caught on push.
examples:
	$(GO) build ./examples/...
	@set -e; for d in examples/*/; do \
		echo "run $$d"; \
		$(GO) run ./$$d > /dev/null; \
	done

fmt:
	gofmt -w .

# Fails (with the offending file list) when any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Exactly what CI runs.
ci: build vet fmt-check race examples fuzz-smoke bench-smoke
